// Package engine runs the randomized restarts every algorithm in this
// repository is built on (SSPC's medoid restarts, PROCLUS and DOC trials,
// CLARANS local searches, the experiment harness's best-of-N protocol)
// across a bounded worker pool.
//
// The engine is race-safe by construction: restart r always draws from its
// own RNG seeded with ChildSeed(seed, r), results are collected into a slice
// indexed by restart, and reductions happen after all restarts finish. A run
// with Workers = N is therefore byte-identical to a run with Workers = 1 —
// parallelism changes wall-clock time, never output.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/stats"
)

// DefaultWorkers resolves a Workers option: values <= 0 mean "one worker per
// available CPU" (runtime.GOMAXPROCS(0)).
func DefaultWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// splitmix64 constants (Steele, Lea, Flood — "Fast splittable pseudorandom
// number generators", OOPSLA 2014). The gamma is the golden ratio in 64-bit
// fixed point; the two multipliers are the finalization mix.
const (
	splitmixGamma = 0x9E3779B97F4A7C15
	splitmixMixA  = 0xBF58476D1CE4E5B9
	splitmixMixB  = 0x94D049BB133111EB
)

// ChildSeed derives the deterministic seed of restart r from a base seed
// using a splitmix64-style finalizer, so sibling restarts get decorrelated
// streams without sharing any RNG state. Restart 0 reuses the base seed
// unchanged: a single-restart run is byte-identical to the historical serial
// path that seeded its RNG with Options.Seed directly.
func ChildSeed(base int64, restart int) int64 {
	if restart == 0 {
		return base
	}
	z := uint64(base) + uint64(restart)*splitmixGamma
	z ^= z >> 30
	z *= splitmixMixA
	z ^= z >> 27
	z *= splitmixMixB
	z ^= z >> 31
	return int64(z)
}

// Cause reports why ctx ended: context.Cause(ctx) once ctx is done, nil
// while it is live. It is the cancellation check every cooperative loop in
// this repository uses — a nil-safe, allocation-free probe whose non-nil
// return is always the error the caller should propagate verbatim
// (context.Canceled, context.DeadlineExceeded, or a custom cancel cause).
func Cause(ctx context.Context) error {
	if ctx == nil || ctx.Err() == nil {
		return nil
	}
	return context.Cause(ctx)
}

// PanicError is the typed failure a panicking restart is contained into: the
// engine recovers the panic (on whichever goroutine ran the restart — chunk
// pool workers re-raise onto the restart goroutine first), records the value
// and stack, and fails the run with this error instead of crashing the
// process. Unwrap exposes the panic value when it is itself an error, so
// errors.Is / errors.As see through the containment (an injected
// faults.ModePanic still matches faults.ErrInjected).
type PanicError struct {
	Restart int
	Value   any
	Stack   []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: restart %d panicked: %v", e.Restart, e.Value)
}

// Unwrap returns the panic value if it was an error, nil otherwise.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// safeCall invokes one restart with panic containment and the restart-launch
// fault gate inside the recover scope (so an injected launch panic is
// contained exactly like a panic from fn itself).
func safeCall[R any](r int, rng *stats.RNG, fn func(restart int, rng *stats.RNG) (R, error)) (res R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Restart: r, Value: v, Stack: debug.Stack()}
		}
	}()
	if gateErr := faults.Check(faults.SiteRestartLaunch); gateErr != nil {
		var zero R
		return zero, gateErr
	}
	return fn(r, rng)
}

// restartErr wraps a restart failure with its index — unless the failure is
// the caller's own cancellation bubbling back up (a cooperative loop inside
// fn observed ctx and returned its cause), in which case the bare cause is
// returned so callers always see context.Canceled / context.DeadlineExceeded
// for a canceled run, never a restart-wrapped partial-failure message.
func restartErr(ctx context.Context, r int, err error) error {
	if c := Cause(ctx); c != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return c
	}
	return fmt.Errorf("engine: restart %d: %w", r, err)
}

// Run executes fn for restarts 0..n-1 across at most `workers` goroutines
// (<= 0 means GOMAXPROCS) and returns the per-restart results in restart
// order. Each invocation receives a fresh RNG seeded with
// ChildSeed(seed, restart), so the result slice does not depend on the
// worker count or on scheduling.
//
// The first failing restart cancels the remaining ones; the error reported
// is the recorded failure with the lowest restart index, wrapped with that
// index. A canceled ctx stops the run and returns context.Cause(ctx). A
// panicking restart is contained into a typed *PanicError instead of
// crashing the process.
func Run[R any](ctx context.Context, n, workers int, seed int64, fn func(restart int, rng *stats.RNG) (R, error)) ([]R, error) {
	if fn == nil {
		return nil, errors.New("engine: nil restart function")
	}
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}
	results := make([]R, n)

	if workers == 1 {
		for r := 0; r < n; r++ {
			if err := Cause(ctx); err != nil {
				return nil, err
			}
			res, err := safeCall(r, stats.NewRNG(ChildSeed(seed, r)), fn)
			if err != nil {
				return nil, restartErr(ctx, r, err)
			}
			results[r] = res
		}
		return results, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var skipped atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				r := int(next.Add(1)) - 1
				if r >= n {
					return
				}
				if runCtx.Err() != nil {
					skipped.Store(true)
					return
				}
				res, err := safeCall(r, stats.NewRNG(ChildSeed(seed, r)), fn)
				if err != nil {
					errs[r] = err
					cancel()
					return
				}
				results[r] = res
			}
		}()
	}
	wg.Wait()

	for r, err := range errs {
		if err != nil {
			return nil, restartErr(ctx, r, err)
		}
	}
	if skipped.Load() {
		// No restart failed but some never ran: the parent ctx was canceled.
		return nil, Cause(ctx)
	}
	return results, nil
}

// Stream executes fn for restarts 0..n-1 like Run, but launches restarts
// lazily and stops early once the incumbent best result has not improved for
// `plateau` consecutive restarts. It returns the prefix of per-restart
// results that was actually consumed (always at least min(plateau+1, n)
// long on success).
//
// The early-stop decision is taken in restart-index order: after consuming
// restart r, the stream ends iff none of restarts bestIdx+1..r improved on
// the incumbent best at bestIdx and r-bestIdx >= plateau. Workers may
// compute restarts beyond the stop point speculatively; those results are
// discarded, never reduced. The consumed prefix is therefore a pure
// function of (n, seed, plateau, fn) — byte-identical for every worker
// count — and `better` must be a pure function of its arguments.
//
// plateau <= 0 disables early stopping: Stream degenerates to Run exactly
// (all n restarts, identical results slice). Errors follow Run's contract:
// the recorded failure with the lowest restart index wins, wrapped with that
// index, except that failures beyond the stop point are discarded with the
// results.
func Stream[R any](ctx context.Context, n, workers int, seed int64, plateau int,
	better func(a, b R) bool, fn func(restart int, rng *stats.RNG) (R, error)) ([]R, error) {
	if plateau <= 0 {
		return Run(ctx, n, workers, seed, fn)
	}
	if fn == nil {
		return nil, errors.New("engine: nil restart function")
	}
	if better == nil {
		return nil, errors.New("engine: nil better predicate")
	}
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers = DefaultWorkers(workers)
	if workers > n {
		workers = n
	}

	if workers == 1 {
		var results []R
		bestIdx := 0
		for r := 0; r < n; r++ {
			if err := Cause(ctx); err != nil {
				return nil, err
			}
			res, err := safeCall(r, stats.NewRNG(ChildSeed(seed, r)), fn)
			if err != nil {
				return nil, restartErr(ctx, r, err)
			}
			results = append(results, res)
			if r > 0 && better(res, results[bestIdx]) {
				bestIdx = r
			}
			if r-bestIdx >= plateau {
				break
			}
		}
		return results, nil
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	results := make([]R, n)
	errs := make([]error, n)
	done := make([]chan struct{}, n)
	for r := range done {
		done[r] = make(chan struct{})
	}

	// Producers take one launch token per restart; the consumer issues one
	// more per consumed slot. That caps the speculative overhang at
	// workers+plateau restarts beyond the stop point, so cheap restart
	// functions cannot race through the whole schedule before the stream
	// decides to stop — restarts genuinely launch lazily.
	lookahead := workers + plateau
	if lookahead > n {
		lookahead = n
	}
	tokens := make(chan struct{}, lookahead+n)
	for i := 0; i < lookahead; i++ {
		tokens <- struct{}{}
	}
	stopCh := make(chan struct{})

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopCh:
					return
				case <-runCtx.Done():
					return
				case <-tokens:
				}
				r := int(next.Add(1)) - 1
				if r >= n {
					return
				}
				res, err := safeCall(r, stats.NewRNG(ChildSeed(seed, r)), fn)
				if err != nil {
					errs[r] = err
				} else {
					results[r] = res
				}
				close(done[r])
			}
		}()
	}

	// Consume slots in restart-index order so the stop decision (and the
	// returned prefix) cannot depend on completion order.
	consumed := 0
	bestIdx := 0
	var firstErr error
	for r := 0; r < n; r++ {
		select {
		case <-done[r]:
		case <-ctx.Done():
			close(stopCh)
			cancel()
			wg.Wait()
			return nil, Cause(ctx)
		}
		if errs[r] != nil {
			firstErr = restartErr(ctx, r, errs[r])
			break
		}
		consumed = r + 1
		tokens <- struct{}{}
		if r > 0 && better(results[r], results[bestIdx]) {
			bestIdx = r
		}
		if r-bestIdx >= plateau {
			break
		}
	}
	close(stopCh)
	cancel()
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results[:consumed:consumed], nil
}

// Best returns the index of the best element under the strict `better`
// predicate. Ties keep the lowest index, so the selection is deterministic
// and independent of how the results were produced. It returns -1 for an
// empty slice.
func Best[R any](results []R, better func(a, b R) bool) int {
	if len(results) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(results); i++ {
		if better(results[i], results[best]) {
			best = i
		}
	}
	return best
}
