// Command datagen generates synthetic projected-clustering datasets
// following the data model of the SSPC paper and writes them as CSV (one
// object per row, class label in the last column, −1 for outliers).
//
// Usage:
//
//	datagen -n 1000 -d 100 -k 5 -l 10 -o data.csv
//	datagen -n 1000 -d 100 -k 5 -l 10 -outliers 0.1 -dims dims.txt -o data.csv
//
// With -dims, the true relevant dimensions of each class are written to a
// side file ("class <c>: <j1> <j2> ...").
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func main() {
	var (
		n        = flag.Int("n", 1000, "number of objects")
		d        = flag.Int("d", 100, "number of dimensions")
		k        = flag.Int("k", 5, "number of hidden classes")
		l        = flag.Int("l", 10, "average relevant dimensions per class")
		spread   = flag.Float64("lspread", 0, "std dev of per-class dimension counts")
		outliers = flag.Float64("outliers", 0, "outlier fraction [0,1)")
		seed     = flag.Int64("seed", 1, "random seed")
		out      = flag.String("o", "", "output CSV path (default stdout)")
		dimsOut  = flag.String("dims", "", "optional path for the true relevant dimensions")
	)
	flag.Parse()

	gt, err := synth.Generate(synth.Config{
		N: *n, D: *d, K: *k, AvgDims: *l, DimStdDev: *spread,
		OutlierFrac: *outliers, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	if err := dataset.WriteCSV(bw, gt.Data, gt.Labels); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	if err := bw.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}

	if *dimsOut != "" {
		f, err := os.Create(*dimsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		for c, dims := range gt.Dims {
			fmt.Fprintf(f, "class %d:", c)
			for _, j := range dims {
				fmt.Fprintf(f, " %d", j)
			}
			fmt.Fprintln(f)
		}
	}
}
