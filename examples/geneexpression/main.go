// Gene-expression scenario: the configuration the SSPC paper motivates in
// its introduction and studies in §5.3 — few samples (n = 150), thousands of
// genes (d = 3000), and only ~1% of genes relevant to each sample class.
//
// Unsupervised projected clustering struggles here; a few labeled samples
// (e.g. tumours of a known type) and labeled genes (genes known relevant to
// a tumour type) recover the clusters. Labeled objects are removed before
// computing the ARI so the gain is not the inputs themselves.
package main

import (
	"fmt"
	"log"

	sspc "repro"
)

func main() {
	gt, err := sspc.Generate(sspc.SynthConfig{
		N: 150, D: 3000, K: 5, AvgDims: 30, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d samples × %d genes, 5 classes, 30 relevant genes each (1%%)\n\n",
		gt.Data.N(), gt.Data.D())

	// Raw (unsupervised) SSPC.
	raw, err := sspc.Cluster(gt.Data, withSeed(sspc.DefaultOptions(5), 1))
	if err != nil {
		log.Fatal(err)
	}
	rawARI, err := sspc.ARI(gt.Labels, raw.Assignments)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unsupervised SSPC:             ARI = %.3f\n", rawARI)

	// Semi-supervised: 5 labeled samples and 5 labeled genes per class.
	kn, err := sspc.SampleKnowledge(gt, sspc.KnowledgeConfig{
		Kind: sspc.ObjectsAndDims, Coverage: 1, Size: 5, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	opts := withSeed(sspc.DefaultOptions(5), 1)
	opts.Knowledge = kn
	sup, err := sspc.Cluster(gt.Data, opts)
	if err != nil {
		log.Fatal(err)
	}
	ft, fp := sspc.FilterObjects(gt.Labels, sup.Assignments, kn.LabeledObjectSet())
	supARI, err := sspc.ARI(ft, fp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 5 samples + 5 genes/class: ARI = %.3f (labeled samples excluded)\n\n", supARI)

	q := sspc.DimSelectionQuality(gt.Labels, sup.Assignments, sup.Dims, gt.Dims)
	fmt.Printf("relevant-gene recovery: precision %.2f, recall %.2f\n", q.Precision, q.Recall)
	for c := 0; c < 5; c++ {
		fmt.Printf("cluster %d selected %d genes (true: %d)\n",
			c, len(sup.Dims[c]), len(gt.Dims[c]))
	}
}

func withSeed(o sspc.Options, seed int64) sspc.Options {
	o.Seed = seed
	return o
}
