// Constrained: the same domain knowledge expressed in all three supervision
// forms the paper's §2 survey compares — labeled objects, must/cannot-link
// pairs, and seed sets — fed through the Supervision carrier to SSPC and
// the three semi-supervised k-means baselines.
package main

import (
	"fmt"
	"log"

	sspc "repro"
)

func main() {
	// 300 objects, 40 dimensions, 3 hidden classes with 8 relevant
	// dimensions each — easy enough that every algorithm converges, hard
	// enough that supervision visibly helps.
	gt, err := sspc.Generate(sspc.SynthConfig{
		N: 300, D: 40, K: 3, AvgDims: 8, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The annotator labels 4 objects per class. This is the ground form;
	// the other two are derived from it below, exactly the way a user with
	// a constraints file or a seed-set file would arrive at theirs.
	kn, err := sspc.SampleKnowledge(gt, sspc.KnowledgeConfig{
		Kind: sspc.ObjectsOnly, Coverage: 1, Size: 4, Seed: 22,
	})
	if err != nil {
		log.Fatal(err)
	}

	sup := &sspc.Supervision{Knowledge: kn}
	if err := sup.Validate(300, 40, 3); err != nil {
		log.Fatal(err)
	}
	must, cannot, err := sup.AsConstraints()
	if err != nil {
		log.Fatal(err)
	}
	sets, err := sup.AsSeedSets()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("supervision: %d labeled objects -> %d must-link + %d cannot-link pairs, %d seed sets\n",
		12, len(must), len(cannot), len(sets))

	report := func(name string, res *sspc.Result, err error) {
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		ari, err := sspc.ARI(gt.Labels, res.Assignments)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s ARI %.3f  (%d iterations)\n", name, ari, res.Iterations)
	}

	// SSPC consumes the label form directly (its Io input).
	opts := sspc.DefaultOptions(3)
	opts.Knowledge = kn
	opts.Seed = 23
	res, err := sspc.Cluster(gt.Data, opts)
	report("SSPC", res, err)

	// COP-KMeans consumes the pairwise form.
	cop := sspc.COPKMeansDefaults(3)
	cop.Seed = 23
	res, err = sspc.COPKMeans(gt.Data,
		&sspc.Constraints{MustLink: must, CannotLink: cannot}, cop)
	report("COP-KMeans", res, err)

	// Seeded-KMeans initializes its centroids from the seed sets (the
	// Supervision conversion folds them back into labeled objects);
	// Constrained-KMeans additionally clamps the seeds to their class.
	seeded := &sspc.Supervision{SeedSets: sets}
	knSeeds, err := seeded.AsKnowledge()
	if err != nil {
		log.Fatal(err)
	}
	skm := sspc.SeedKMeansDefaults(3)
	skm.Seed = 23
	res, err = sspc.SeedKMeans(gt.Data, knSeeds, skm)
	report("Seeded-KMeans", res, err)

	skm.Constrained = true
	res, err = sspc.SeedKMeans(gt.Data, knSeeds, skm)
	report("Constrained-KMeans", res, err)
}
