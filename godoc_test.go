package sspc

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestEveryPackageHasGodoc enforces the documentation contract: every
// package in the module — the public sspc package, every internal/*
// package, every command under cmd/, and every runnable example — must
// carry a package-level doc comment. ARCHITECTURE.md maps the layers; this
// test keeps the per-package docs from rotting as packages are added.
func TestEveryPackageHasGodoc(t *testing.T) {
	root, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	// package import dir -> true once a doc comment was seen
	docs := map[string]bool{}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			docs[dir] = true
		} else if _, ok := docs[dir]; !ok {
			docs[dir] = false
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) < 20 {
		t.Fatalf("walked only %d packages — wrong working directory?", len(docs))
	}
	for dir, ok := range docs {
		if !ok {
			t.Errorf("package in %s has no package-level doc comment on any file", dir)
		}
	}
}
