// Command experiments regenerates the tables and figures of the SSPC paper
// (Yip, Cheung, Ng — ICDE 2005).
//
// Usage:
//
//	experiments -fig all                     # everything, quick scale
//	experiments -fig 3 -scale 1 -repeats 10  # Figure 3 at full paper scale
//	experiments -fig 5,6,7                   # a subset
//
// Figure ids: 1, 2, 3, 4, 5, 6, 7, 8a, 8b, outliers, noisy, styles, subspace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "comma-separated figure ids (1,2,3,4,5,6,7,8a,8b,outliers,noisy,styles,subspace) or 'all'")
		repeats = flag.Int("repeats", 3, "repeated runs per configuration (paper: 10)")
		scale   = flag.Float64("scale", 0.4, "dataset size scale (1.0 = paper)")
		seed    = flag.Int64("seed", 1, "master random seed")
		workers = flag.Int("workers", 0, "concurrent (algorithm × dataset × seed) cells; 0 = GOMAXPROCS. Tables are identical for every value")
		early   = flag.Int("earlystop", 0, "stop each best-of-repeats protocol once its objective has not improved for this many consecutive repeats; -repeats stays the cap. 0 = paper's fixed-repeat protocol")
		chunk   = flag.Int("chunk", 0, "objects (harp: nodes) per intra-restart chunk in every algorithm's chunked loops; 0 = per-algorithm defaults. Tables are identical for every value")
		shards  = flag.Int("shards", 0, "re-back every generated dataset as this many contiguous row-range shards before clustering; 0 = flat storage. Tables are identical for every value")
	)
	flag.Parse()

	cfg := experiments.Config{Repeats: *repeats, Scale: *scale, Seed: *seed, Workers: *workers, EarlyStop: *early, ChunkSize: *chunk, Shards: *shards}

	type figure struct {
		id  string
		run func() (*experiments.Table, error)
	}
	all := []figure{
		{"1", experiments.Figure1},
		{"2", experiments.Figure2},
		{"3", func() (*experiments.Table, error) { return experiments.Figure3(cfg) }},
		{"4", func() (*experiments.Table, error) { return experiments.Figure4(cfg) }},
		{"outliers", func() (*experiments.Table, error) { return experiments.OutlierImmunity(cfg) }},
		{"5", func() (*experiments.Table, error) { return experiments.Figure5(cfg) }},
		{"6", func() (*experiments.Table, error) { return experiments.Figure6(cfg) }},
		{"7", func() (*experiments.Table, error) { return experiments.Figure7(cfg) }},
		{"8a", func() (*experiments.Table, error) { return experiments.Figure8a(cfg) }},
		{"8b", func() (*experiments.Table, error) { return experiments.Figure8b(cfg) }},
		{"noisy", func() (*experiments.Table, error) { return experiments.NoisyInputs(cfg) }},
		{"styles", func() (*experiments.Table, error) { return experiments.SupervisionStyles(cfg) }},
		{"subspace", func() (*experiments.Table, error) { return experiments.SubspaceBaselines(cfg) }},
	}

	want := map[string]bool{}
	if *fig != "all" {
		for _, id := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	for _, f := range all {
		if *fig != "all" && !want[f.id] {
			continue
		}
		t, err := f.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: figure %s: %v\n", f.id, err)
			os.Exit(1)
		}
		if _, err := t.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: no figure matched %q\n", *fig)
		os.Exit(2)
	}
}
