package stats

import (
	"errors"
	"math"
)

// Histogram is a one-dimensional equi-width histogram over a fixed [Lo, Hi]
// range. SSPC uses 1-D histograms to estimate object density around a
// candidate seed when choosing grid-building dimensions for clusters with no
// input knowledge (paper §4.2.4).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram builds a histogram with bins cells over values. Values equal
// to Hi fall in the last cell. It returns an error for bins < 1 or a
// degenerate range.
func NewHistogram(values []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	lo, hi := Min(values), Max(values)
	if math.IsInf(lo, 1) {
		return nil, errors.New("stats: histogram of empty slice")
	}
	if lo == hi {
		hi = lo + 1 // all mass in one cell; keep the width positive
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
	for _, v := range values {
		h.Counts[h.Bin(v)]++
		h.total++
	}
	return h, nil
}

// Bin returns the cell index for value v, clamped to [0, bins).
func (h *Histogram) Bin(v float64) int {
	bins := len(h.Counts)
	idx := int(float64(bins) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 {
		return 0
	}
	if idx >= bins {
		return bins - 1
	}
	return idx
}

// Count returns the number of values in the cell containing v.
func (h *Histogram) Count(v float64) int { return h.Counts[h.Bin(v)] }

// Total returns the number of values folded into the histogram.
func (h *Histogram) Total() int { return h.total }

// PeakBin returns the index of the densest cell (ties: lowest index).
func (h *Histogram) PeakBin() int {
	best, arg := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, arg = c, i
		}
	}
	return arg
}

// Density returns the fraction of values in the cell containing v. This is
// the per-dimension density score used to weight grid-building dimensions.
func (h *Histogram) Density(v float64) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Count(v)) / float64(h.total)
}
