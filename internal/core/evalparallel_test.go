package core

import (
	"math"
	"testing"

	"repro/internal/synth"
)

// Tests of the cluster-chunked Step-4 evaluation path (assigner.evaluate
// through engine.MapChunks): worker-count bit-identity including the
// degenerate cluster shapes, the K=1 single-chunk short-circuit, the empty
// cluster (+Inf dispersion) leg, and a -race exercise of the per-worker
// gather scratch slots.

// evalClusters partitions the fixture's objects into k member lists:
// round-robin over the first k-1 clusters, with optional degenerate shapes
// (an empty cluster and a singleton) spliced in when k >= 3.
func evalClusters(n, k int) [][]int {
	members := make([][]int, k)
	for i := range members {
		members[i] = []int{}
	}
	live := k
	if k >= 3 {
		members[k-2] = []int{}      // stays empty: the +Inf dispersion leg
		members[k-1] = []int{n / 2} // singleton: ni-1 = 0, φ_ij = 0
		live = k - 2
	}
	for x := 0; x < n; x++ {
		if k >= 3 && x == n/2 {
			continue // owned by the singleton cluster
		}
		members[x%live] = append(members[x%live], x)
	}
	return members
}

// TestEvaluateParallelMatchesSerial: the MapChunks evaluation returns
// bit-identical Σ φ_i — and identical per-cluster dims and φ_i — for every
// worker count, on flat and sharded storage, including empty and singleton
// clusters.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	gt, err := synth.Generate(synth.Config{N: 240, D: 30, K: 3, AvgDims: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	const k = 5
	members := evalClusters(gt.Data.N(), k)
	for label, ds := range storageVariants(t, gt.Data, 4) {
		serial, err := NewParallelEvalBench(ds, DefaultOptions(k), members, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := serial.Evaluate()
		for _, workers := range []int{2, 3, 8} {
			par, err := NewParallelEvalBench(ds, DefaultOptions(k), members, workers)
			if err != nil {
				t.Fatal(err)
			}
			got := par.Evaluate()
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("%s workers=%d: Σφ = %x, want %x (parallel fold drifted from serial)",
					label, workers, math.Float64bits(got), math.Float64bits(want))
			}
			for i := range serial.clusters {
				s, p := serial.clusters[i], par.clusters[i]
				if math.Float64bits(s.phi) != math.Float64bits(p.phi) {
					t.Errorf("%s workers=%d cluster %d: φ_i = %v, want %v", label, workers, i, p.phi, s.phi)
				}
				if len(s.dims) != len(p.dims) {
					t.Fatalf("%s workers=%d cluster %d: dims = %v, want %v", label, workers, i, p.dims, s.dims)
				}
				for j := range s.dims {
					if s.dims[j] != p.dims[j] {
						t.Errorf("%s workers=%d cluster %d: dims = %v, want %v", label, workers, i, p.dims, s.dims)
						break
					}
				}
			}
		}
	}
}

// TestEvaluateParallelSingleCluster: K=1 takes MapChunks' single-chunk
// short-circuit (fn runs inline on slot 0, no fold), and still agrees
// bit-for-bit with the columnar single-cluster evaluator at every worker
// count.
func TestEvaluateParallelSingleCluster(t *testing.T) {
	gt, err := synth.Generate(synth.Config{N: 120, D: 20, K: 2, AvgDims: 6, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	members := gt.MembersOfClass(0)
	eb, err := NewEvalBench(gt.Data, DefaultOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	want := eb.Columnar(members)
	for _, workers := range []int{1, 8} {
		pb, err := NewParallelEvalBench(gt.Data, DefaultOptions(2), [][]int{members}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got := pb.Evaluate(); math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("workers=%d: K=1 evaluation = %v, want %v", workers, got, want)
		}
	}
}

// TestDispersionColumnEmptyIsInf pins the empty-cluster leg the chunked
// evaluation relies on: an empty column disperses to +Inf (never selected by
// Lemma 1), and a fully empty cluster evaluates to φ_ij = -Inf on every
// dimension with nothing selected and φ_i = 0.
func TestDispersionColumnEmptyIsInf(t *testing.T) {
	if got := dispersionColumn(nil); !math.IsInf(got, 1) {
		t.Errorf("dispersionColumn(nil) = %v, want +Inf", got)
	}
	if got := dispersionColumn([]float64{}); !math.IsInf(got, 1) {
		t.Errorf("dispersionColumn(empty) = %v, want +Inf", got)
	}
	gt, err := synth.Generate(synth.Config{N: 60, D: 10, K: 2, AvgDims: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	thr := thresholdsFor(gt.Data, SchemeM, 0.5)
	s := newEvalScratch(gt.Data.D())
	ev := evaluateCluster(gt.Data, nil, thr, s, nil)
	if len(ev.dims) != 0 || ev.phi != 0 {
		t.Errorf("empty cluster: dims=%v φ=%v, want none selected and φ=0", ev.dims, ev.phi)
	}
	for j, e := range evaluateDims(gt.Data, nil, thr, s) {
		if !math.IsInf(e.phi, -1) || e.selected {
			t.Errorf("empty cluster dim %d: φ_ij=%v selected=%v, want -Inf unselected", j, e.phi, e.selected)
		}
	}
}

// TestEvaluateParallelScratchRace drives the chunked evaluation with more
// clusters than workers so every scratch slot is reused across chunks within
// one call, repeatedly — the -race run in CI proves a slot is never shared
// between two live goroutines, and the result must still match serial.
func TestEvaluateParallelScratchRace(t *testing.T) {
	gt, err := synth.Generate(synth.Config{N: 320, D: 24, K: 4, AvgDims: 6, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	const k = 16
	members := evalClusters(gt.Data.N(), k)
	serial, err := NewParallelEvalBench(gt.Data, DefaultOptions(k), members, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Evaluate()
	par, err := NewParallelEvalBench(gt.Data, DefaultOptions(k), members, 8)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		if got := par.Evaluate(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("round %d: Σφ = %v, want %v", round, got, want)
		}
	}
}
