package sspc

import (
	"context"
	"io"

	"repro/internal/bicluster"
	"repro/internal/clique"
	"repro/internal/copkmeans"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/seedkmeans"
)

// This file exposes the algorithms of the two related problems the paper
// surveys (§2.1: subspace clustering, biclustering) and the archetypal
// semi-supervised clustering method (§2.2), plus the paper's §6 extension
// for possibly-incorrect inputs.

// CLIQUEOptions configures the CLIQUE subspace clustering baseline.
type CLIQUEOptions = clique.Options

// Subspace is one CLIQUE cluster: dimensions plus covered objects.
type Subspace = clique.Subspace

// CLIQUEDefaults returns a workable CLIQUE configuration.
func CLIQUEDefaults() CLIQUEOptions { return clique.DefaultOptions() }

// CLIQUE runs grid-based subspace clustering (Agrawal et al., SIGMOD 1998).
// It returns the raw (possibly overlapping) subspace clusters and a
// flattened disjoint partition.
func CLIQUE(ds *Dataset, opts CLIQUEOptions) ([]Subspace, *Result, error) {
	return clique.Run(ds, opts)
}

// CLIQUEContext is CLIQUE under a context; see "Cancellation" in the package
// documentation for the shared contract.
func CLIQUEContext(ctx context.Context, ds *Dataset, opts CLIQUEOptions) ([]Subspace, *Result, error) {
	return clique.RunContext(ctx, ds, opts)
}

// BiclusterOptions configures the Cheng–Church δ-bicluster search.
type BiclusterOptions = bicluster.Options

// Bicluster is a discovered submatrix with its mean squared residue.
type Bicluster = bicluster.Bicluster

// BiclusterDefaults returns Cheng–Church defaults for k biclusters at
// residue threshold delta.
func BiclusterDefaults(k int, delta float64) BiclusterOptions {
	return bicluster.DefaultOptions(k, delta)
}

// Biclusters runs the Cheng–Church algorithm (ISMB 2000). It returns the
// raw (possibly row-overlapping) biclusters and a flattened disjoint
// partition scored by mean residue (lower is better).
func Biclusters(ds *Dataset, opts BiclusterOptions) ([]Bicluster, *Result, error) {
	return bicluster.Run(ds, opts)
}

// BiclustersContext is Biclusters under a context; see "Cancellation" in the
// package documentation for the shared contract.
func BiclustersContext(ctx context.Context, ds *Dataset, opts BiclusterOptions) ([]Bicluster, *Result, error) {
	return bicluster.RunContext(ctx, ds, opts)
}

// Constraints holds must-link / cannot-link pairs for COP-KMeans.
type Constraints = copkmeans.Constraints

// COPKMeansOptions configures COP-KMeans.
type COPKMeansOptions = copkmeans.Options

// ErrInfeasible is returned by COPKMeans when the constraints admit no
// assignment.
var ErrInfeasible = copkmeans.ErrInfeasible

// ConstraintsFromKnowledge turns labeled objects into must-link /
// cannot-link pairs.
func ConstraintsFromKnowledge(kn *Knowledge) *Constraints {
	return copkmeans.FromKnowledge(kn)
}

// COPKMeansDefaults returns a standard COP-KMeans configuration.
func COPKMeansDefaults(k int) COPKMeansOptions { return copkmeans.DefaultOptions(k) }

// COPKMeans runs constrained k-means (Wagstaff et al., ICML 2001).
func COPKMeans(ds *Dataset, cons *Constraints, opts COPKMeansOptions) (*Result, error) {
	return copkmeans.Run(ds, cons, opts)
}

// COPKMeansContext is COPKMeans under a context; see "Cancellation" in the
// package documentation for the shared contract.
func COPKMeansContext(ctx context.Context, ds *Dataset, cons *Constraints, opts COPKMeansOptions) (*Result, error) {
	return copkmeans.RunContext(ctx, ds, cons, opts)
}

// KnowledgeReport is the outcome of validating possibly-incorrect inputs
// (the paper's §6 extension).
type KnowledgeReport = core.KnowledgeReport

// ValidateKnowledge compares the supplied knowledge against the data model
// and flags labeled objects/dimensions inconsistent with it.
// objectTolerance <= 0 uses the default (3).
func ValidateKnowledge(ds *Dataset, kn *Knowledge, opts Options, objectTolerance float64) (*KnowledgeReport, error) {
	return core.ValidateKnowledge(ds, kn, opts, objectTolerance)
}

// ClusterValidated validates the knowledge, drops suspect entries, and runs
// SSPC with the cleaned inputs.
func ClusterValidated(ds *Dataset, opts Options, objectTolerance float64) (*Result, *KnowledgeReport, error) {
	return core.RunValidated(ds, opts, objectTolerance)
}

// ClusterValidatedContext is ClusterValidated under a context: validation is
// cheap and runs to completion; the fit itself follows the shared
// cancellation contract (see "Cancellation" in the package documentation).
func ClusterValidatedContext(ctx context.Context, ds *Dataset, opts Options, objectTolerance float64) (*Result, *KnowledgeReport, error) {
	return core.RunValidatedContext(ctx, ds, opts, objectTolerance)
}

// FuzzyKnowledge carries confidence-weighted inputs (§6 extension:
// "fuzzy inputs"); convert with Harden or TopConfident before clustering.
type FuzzyKnowledge = dataset.FuzzyKnowledge

// NewFuzzyKnowledge returns an empty fuzzy knowledge set.
func NewFuzzyKnowledge() *FuzzyKnowledge { return dataset.NewFuzzyKnowledge() }

// SeedKMeansOptions configures Seeded-/Constrained-KMeans.
type SeedKMeansOptions = seedkmeans.Options

// SeedKMeansDefaults returns the seeded variant for k clusters.
func SeedKMeansDefaults(k int) SeedKMeansOptions { return seedkmeans.DefaultOptions(k) }

// SeedKMeans runs Seeded-KMeans (or Constrained-KMeans when
// Options.Constrained is set) — Basu et al., ICML 2002.
func SeedKMeans(ds *Dataset, kn *Knowledge, opts SeedKMeansOptions) (*Result, error) {
	return seedkmeans.Run(ds, kn, opts)
}

// SeedKMeansContext is SeedKMeans under a context; see "Cancellation" in the
// package documentation for the shared contract.
func SeedKMeansContext(ctx context.Context, ds *Dataset, kn *Knowledge, opts SeedKMeansOptions) (*Result, error) {
	return seedkmeans.RunContext(ctx, ds, kn, opts)
}

// Supervision merges every supervision form the paper's §2 survey
// compares — labeled objects/dimensions, must/cannot-link pairs, and seed
// sets — and converts between them (AsKnowledge, AsConstraints,
// AsSeedSets) so any algorithm can consume any form.
type Supervision = core.Supervision

// ParseConstraints reads a must/cannot pair file ("must <i> <j>" /
// "cannot <i> <j>", # comments).
func ParseConstraints(r io.Reader) (must, cannot [][2]int, err error) {
	return core.ParseConstraints(r)
}

// ParseSeedSets reads a seed-set file ("<class> <obj> [<obj> ...]",
// # comments).
func ParseSeedSets(r io.Reader) (map[int][]int, error) {
	return core.ParseSeedSets(r)
}

// Trace observes SSPC's initialization and iterations via Options.Trace.
type Trace = core.Trace

// IterationStats is the per-iteration report delivered to Trace.
type IterationStats = core.IterationStats

// SeedGroupInfo summarizes one seed group after initialization.
type SeedGroupInfo = core.SeedGroupInfo

// Normalization helpers for real datasets.
var (
	// ZScoreNormalize standardizes every column to zero mean, unit variance.
	ZScoreNormalize = dataset.ZScoreNormalize
	// MinMaxNormalize rescales every column to [0,1].
	MinMaxNormalize = dataset.MinMaxNormalize
	// RobustNormalize centers at the median and scales by 1.4826·MAD.
	RobustNormalize = dataset.RobustNormalize
)
