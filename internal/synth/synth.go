// Package synth generates synthetic datasets following the data model of
// Section 3 of the SSPC paper, with the parameters of its Section 5
// evaluation: each hidden class has a set of relevant dimensions on which
// its members are drawn from a narrow local Gaussian, while every other
// value comes from a wide uniform global distribution. The package also
// provides outlier injection, the two-groupings combinator of §5.4, and the
// knowledge sampler that draws the labeled objects / labeled dimensions fed
// to SSPC in §5.3.
package synth

import (
	"errors"
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// Config parameterizes a synthetic dataset.
type Config struct {
	N int // number of objects (excluding none: outliers are part of N)
	D int // number of dimensions
	K int // number of hidden classes

	// AvgDims is the average number of relevant dimensions per class
	// (the paper's l_real). DimStdDev spreads per-class counts around it;
	// 0 makes every class have exactly AvgDims relevant dimensions.
	AvgDims   int
	DimStdDev float64

	// Global distribution: uniform on [GlobalLo, GlobalHi). The paper's
	// experiments use a uniform global distribution.
	GlobalLo, GlobalHi float64

	// Local Gaussian standard deviation, as a fraction of the global range,
	// drawn uniformly from [LocalSDMinFrac, LocalSDMaxFrac] per (class,
	// dimension). The paper uses 1%–10% of the value range.
	LocalSDMinFrac, LocalSDMaxFrac float64

	// OutlierFrac of the N objects are outliers: uniform on every
	// dimension, labeled −1.
	OutlierFrac float64

	// MinClusterFrac bounds the smallest class size as a fraction of the
	// non-outlier objects; class sizes are otherwise random.
	MinClusterFrac float64

	Seed int64
}

// Default fills zero fields with the paper's Figure 3 setup.
func (c Config) Default() Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.D == 0 {
		c.D = 100
	}
	if c.K == 0 {
		c.K = 5
	}
	if c.AvgDims == 0 {
		c.AvgDims = 10
	}
	if c.GlobalHi == c.GlobalLo {
		c.GlobalLo, c.GlobalHi = 0, 100
	}
	if c.LocalSDMinFrac == 0 && c.LocalSDMaxFrac == 0 {
		c.LocalSDMinFrac, c.LocalSDMaxFrac = 0.01, 0.10
	}
	if c.MinClusterFrac == 0 {
		c.MinClusterFrac = 0.6 / float64(c.K)
	}
	return c
}

func (c Config) validate() error {
	if c.N < c.K {
		return fmt.Errorf("synth: N=%d < K=%d", c.N, c.K)
	}
	if c.K <= 0 || c.D <= 0 {
		return errors.New("synth: K and D must be positive")
	}
	if c.AvgDims < 1 || c.AvgDims > c.D {
		return fmt.Errorf("synth: AvgDims=%d out of [1,%d]", c.AvgDims, c.D)
	}
	if c.GlobalHi <= c.GlobalLo {
		return errors.New("synth: empty global range")
	}
	if c.OutlierFrac < 0 || c.OutlierFrac >= 1 {
		return errors.New("synth: OutlierFrac out of [0,1)")
	}
	if c.LocalSDMinFrac <= 0 || c.LocalSDMaxFrac < c.LocalSDMinFrac {
		return errors.New("synth: bad local sd fractions")
	}
	return nil
}

// GroundTruth is a generated dataset together with everything the evaluation
// needs: true labels (−1 for outliers), the per-class relevant dimensions,
// and the local Gaussian parameters.
type GroundTruth struct {
	Data   *dataset.Dataset
	Labels []int   // len N; class in [0,K) or −1
	Dims   [][]int // per class, ascending
	// Center[class][dim] and SD[class][dim] hold the local Gaussian
	// parameters for relevant (class, dim) pairs; maps keyed by dim.
	Center []map[int]float64
	SD     []map[int]float64
	Config Config
}

// NumOutliers returns the count of objects labeled −1.
func (gt *GroundTruth) NumOutliers() int {
	c := 0
	for _, l := range gt.Labels {
		if l < 0 {
			c++
		}
	}
	return c
}

// MembersOfClass returns the object indices of class c in ascending order.
func (gt *GroundTruth) MembersOfClass(c int) []int {
	var out []int
	for i, l := range gt.Labels {
		if l == c {
			out = append(out, i)
		}
	}
	return out
}

// Generate builds a dataset per the config. Objects are laid out in a random
// order (labels shuffled) so that algorithms cannot exploit ordering.
func Generate(cfg Config) (*GroundTruth, error) {
	cfg = cfg.Default()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(cfg.Seed)

	nOutliers := int(float64(cfg.N) * cfg.OutlierFrac)
	nMembers := cfg.N - nOutliers
	if nMembers < cfg.K {
		return nil, fmt.Errorf("synth: only %d non-outlier objects for K=%d", nMembers, cfg.K)
	}

	sizes, err := clusterSizes(rng, nMembers, cfg.K, cfg.MinClusterFrac)
	if err != nil {
		return nil, err
	}

	dims := make([][]int, cfg.K)
	centers := make([]map[int]float64, cfg.K)
	sds := make([]map[int]float64, cfg.K)
	span := cfg.GlobalHi - cfg.GlobalLo
	for c := 0; c < cfg.K; c++ {
		li := cfg.AvgDims
		if cfg.DimStdDev > 0 {
			li = int(rng.Norm(float64(cfg.AvgDims), cfg.DimStdDev) + 0.5)
			if li < 2 {
				li = 2
			}
			if li > cfg.D {
				li = cfg.D
			}
		}
		picked := rng.Sample(cfg.D, li)
		sortInts(picked)
		dims[c] = picked
		centers[c] = make(map[int]float64, li)
		sds[c] = make(map[int]float64, li)
		for _, j := range picked {
			sd := span * rng.Uniform(cfg.LocalSDMinFrac, cfg.LocalSDMaxFrac)
			// Keep the cluster inside the global range so projections stay
			// plausible samples of the global population.
			lo := cfg.GlobalLo + 2*sd
			hi := cfg.GlobalHi - 2*sd
			if hi <= lo {
				lo, hi = cfg.GlobalLo, cfg.GlobalHi
			}
			centers[c][j] = rng.Uniform(lo, hi)
			sds[c][j] = sd
		}
	}

	// Build the label vector, then shuffle object positions.
	labels := make([]int, 0, cfg.N)
	for c := 0; c < cfg.K; c++ {
		for t := 0; t < sizes[c]; t++ {
			labels = append(labels, c)
		}
	}
	for t := 0; t < nOutliers; t++ {
		labels = append(labels, -1)
	}
	perm := rng.Perm(cfg.N)
	shuffled := make([]int, cfg.N)
	for i, p := range perm {
		shuffled[p] = labels[i]
	}
	labels = shuffled

	ds, err := dataset.New(cfg.N, cfg.D)
	if err != nil {
		return nil, err
	}
	for i := 0; i < cfg.N; i++ {
		c := labels[i]
		for j := 0; j < cfg.D; j++ {
			if c >= 0 {
				if mu, ok := centers[c][j]; ok {
					ds.Set(i, j, rng.Norm(mu, sds[c][j]))
					continue
				}
			}
			ds.Set(i, j, rng.Uniform(cfg.GlobalLo, cfg.GlobalHi))
		}
	}

	return &GroundTruth{
		Data:   ds,
		Labels: labels,
		Dims:   dims,
		Center: centers,
		SD:     sds,
		Config: cfg,
	}, nil
}

// clusterSizes splits n objects into k parts with each part at least
// minFrac·n, using random proportions for the remainder.
func clusterSizes(rng *stats.RNG, n, k int, minFrac float64) ([]int, error) {
	minSize := int(minFrac * float64(n))
	if minSize < 1 {
		minSize = 1
	}
	if minSize*k > n {
		return nil, fmt.Errorf("synth: min cluster size %d infeasible for n=%d k=%d", minSize, n, k)
	}
	sizes := make([]int, k)
	remaining := n - minSize*k
	weights := make([]float64, k)
	total := 0.0
	for i := range weights {
		weights[i] = rng.Float64() + 0.1
		total += weights[i]
	}
	assigned := 0
	for i := range sizes {
		extra := int(float64(remaining) * weights[i] / total)
		sizes[i] = minSize + extra
		assigned += extra
	}
	// Distribute rounding leftovers.
	for t := 0; t < remaining-assigned; t++ {
		sizes[t%k]++
	}
	return sizes, nil
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
